// Collusion: the §6.3.2 experiment in miniature. Half the senders are
// legitimate TCP users; half are attackers paired with colluding receivers
// that dutifully return congestion policing feedback, so capabilities
// alone cannot stop them. NetFence's guarantee is weaker but robust: the
// per-(sender, bottleneck) AIMD rate limiters give every sender —
// legitimate or malicious — the same fair share, with no per-host state
// at the bottleneck router.
package main

import (
	"fmt"

	"netfence"
)

func main() {
	eng := netfence.NewEngine(9)
	const (
		senders    = 20
		bottleneck = 4_000_000 // 200 kbps fair share each
	)
	cfg := netfence.DefaultDumbbell(senders, bottleneck)
	cfg.ColluderASes = 9
	d := netfence.NewDumbbell(eng, cfg)
	sys := netfence.NewSystem(d.Net, netfence.DefaultConfig())
	netfence.DeployDumbbell(d, sys, netfence.Policy{})

	// Roles: the first of each AS's two hosts is a user (the paper uses
	// a 25/75 split at 1000 senders; internal/exp reproduces that).
	var receivers []*netfence.TCPReceiver
	var sinks []*netfence.UDPSink
	for i, h := range d.Senders {
		if i%cfg.HostsPerAS < (cfg.HostsPerAS+3)/4 {
			flow := netfence.FlowID(1 + i)
			receivers = append(receivers, netfence.NewTCPReceiver(d.Victim.Host, flow))
			netfence.NewTCPSender(h.Host, d.Victim.ID, flow, -1, netfence.DefaultTCP()).Start()
		} else {
			col := d.Colluders[i%len(d.Colluders)]
			flow := netfence.FlowID(1000 + i)
			sinks = append(sinks, netfence.NewUDPSink(col.Host, flow))
			netfence.NewUDPSource(h.Host, col.ID, flow, 1_000_000, 1500).Start()
		}
	}

	// Let AIMD converge, then measure a two-minute window.
	warm, end := 120*netfence.Second, 240*netfence.Second
	eng.RunUntil(warm)
	userMark := make([]int64, len(receivers))
	for i, r := range receivers {
		userMark[i] = r.DeliveredBytes()
	}
	atkMark := make([]uint64, len(sinks))
	for i, s := range sinks {
		atkMark[i] = s.Bytes
	}
	eng.RunUntil(end)

	window := (end - warm).Seconds()
	var userRates []float64
	var userSum float64
	for i, r := range receivers {
		rate := float64(r.DeliveredBytes()-userMark[i]) * 8 / window
		userRates = append(userRates, rate)
		userSum += rate
	}
	var atkSum float64
	for i, s := range sinks {
		atkSum += float64(s.Bytes-atkMark[i]) * 8 / window
	}
	userAvg := userSum / float64(len(receivers))
	atkAvg := atkSum / float64(len(sinks))

	fmt.Printf("senders: %d (%d users, %d attackers), fair share %.0f kbps\n",
		senders, len(receivers), len(sinks), float64(bottleneck)/senders/1000)
	fmt.Printf("avg user throughput:     %8.0f kbps\n", userAvg/1000)
	fmt.Printf("avg attacker throughput: %8.0f kbps\n", atkAvg/1000)
	fmt.Printf("throughput ratio:        %8.2f   (paper: ~1)\n", userAvg/atkAvg)
	fmt.Printf("Jain index among users:  %8.2f   (paper: ~1)\n", netfence.Jain(userRates))

	// The scalability point: the bottleneck keeps no per-sender state;
	// each access router holds only its own senders' limiters.
	total := 0
	for _, ra := range d.SrcAccess {
		if ar := sys.Access(ra); ar != nil {
			total += ar.LimiterCount()
		}
	}
	fmt.Printf("rate limiters across access routers: %d (bottleneck router: none)\n", total)
}
