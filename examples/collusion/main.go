// Collusion: the §6.3.2 experiment in miniature. Half the senders are
// legitimate TCP users; half are attackers paired with colluding receivers
// that dutifully return congestion policing feedback, so capabilities
// alone cannot stop them. NetFence's guarantee is weaker but robust: the
// per-(sender, bottleneck) AIMD rate limiters give every sender —
// legitimate or malicious — the same fair share, with no per-host state
// at the bottleneck router.
//
// The scenario is declarative; Build (instead of Run) keeps a handle on
// the underlying topology and defense system for the final state-size
// introspection.
package main

import (
	"fmt"
	"log"

	"netfence"
)

func main() {
	const (
		senders    = 20
		bottleneck = 4_000_000 // 200 kbps fair share each
	)
	// Roles: a quarter of the senders are users (the paper uses a 25/75
	// split at 1000 senders; internal/exp reproduces that).
	users := netfence.Range(0, senders/4)
	attackers := netfence.Range(senders/4, senders)

	in, err := netfence.Scenario{
		Name:     "collusion",
		Seed:     9,
		Topology: netfence.DumbbellSpec{Senders: senders, BottleneckBps: bottleneck, ColluderASes: 9},
		Defense:  netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: users},
			netfence.ColluderPairs{Senders: attackers, RateBps: 1_000_000},
		},
		Duration: 240 * netfence.Second,
		Warmup:   120 * netfence.Second,
	}.Build()
	if err != nil {
		log.Fatal(err)
	}
	res := in.Run()

	fmt.Printf("senders: %d (%d users, %d attackers), fair share %.0f kbps\n",
		senders, len(users), len(attackers), float64(bottleneck)/senders/1000)
	fmt.Printf("avg user throughput:     %8.0f kbps\n", res.UserBps/1000)
	fmt.Printf("avg attacker throughput: %8.0f kbps\n", res.AttackerBps/1000)
	fmt.Printf("throughput ratio:        %8.2f   (paper: ~1)\n", res.Ratio)
	fmt.Printf("Jain index among users:  %8.2f   (paper: ~1)\n", res.Jain)

	// The scalability point: the bottleneck keeps no per-sender state;
	// each access router holds only its own senders' limiters. Instance
	// exposes the deployed system and topology for this introspection.
	if sys, ok := in.System.(*netfence.System); ok {
		total := 0
		for _, ra := range in.Dumbbell.SrcAccess {
			if ar := sys.Access(ra); ar != nil {
				total += ar.LimiterCount()
			}
		}
		fmt.Printf("rate limiters across access routers: %d (bottleneck router: none)\n", total)
	}
}
