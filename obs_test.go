package netfence

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"netfence/internal/obs"
)

// obsSnapshots runs sc with tracing enabled and returns three
// deterministic byte strings: the counter snapshot at a mid-run Advance
// boundary, the final Result counter snapshot, and the merged trace
// JSON. JSON map marshaling sorts keys, so equal maps yield equal
// bytes.
func obsSnapshots(t *testing.T, sc Scenario) (mid, end, trace string) {
	t.Helper()
	sc.TraceFlows = 4
	in, err := sc.Build()
	if err != nil {
		t.Fatalf("%s (shards=%d): %v", sc.Name, sc.Shards, err)
	}
	defer in.Stop()

	in.Advance(sc.Duration / 2)
	midRaw, err := json.Marshal(in.Counters())
	if err != nil {
		t.Fatal(err)
	}

	res := in.Finish()
	endRaw, err := json.Marshal(res.Counters)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := obs.WriteTraceJSON(&buf, in.Trace()); err != nil {
		t.Fatal(err)
	}
	return string(midRaw), string(endRaw), buf.String()
}

// TestObsDeterminismAcrossShards is the observability analogue of the
// sharded equivalence gate: the deterministic counter plane and the
// sampled flight-recorder trace must be byte-identical at shards 1, 2,
// 4 and 8 — including a counter snapshot taken at a mid-run Advance
// boundary, so the guarantee holds for live-steered runs, not just
// completed ones.
func TestObsDeterminismAcrossShards(t *testing.T) {
	cases := []struct {
		name      string
		spec      TopologySpec
		workloads []Workload
	}{
		{
			name: "dumbbell",
			spec: DumbbellSpec{Senders: 20, BottleneckBps: 4_000_000, ColluderASes: 3},
			workloads: []Workload{
				LongTCP{Senders: Range(0, 5)},
				UDPFlood{Senders: Range(5, 12)},
				ColluderPairs{Senders: Range(12, 20), RateBps: 1_000_000},
			},
		},
		{
			name: "random-as",
			spec: RandomASSpec{Senders: 20, BottleneckBps: 4_000_000, TransitASes: 4, ExtraLinks: 2, ColluderASes: 3, GraphSeed: 3},
			workloads: []Workload{
				LongTCP{Senders: Range(0, 5)},
				UDPFlood{Senders: Range(5, 12)},
				ColluderPairs{Senders: Range(12, 20), RateBps: 1_000_000},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mid1, end1, trace1 := obsSnapshots(t, equivScenario(tc.spec, tc.workloads, 1))
			if mid1 == "{}" || end1 == "{}" {
				t.Fatalf("%s: empty counter snapshot (mid=%s end=%s)", tc.name, mid1, end1)
			}
			if trace1 == "[\n]\n" {
				t.Fatalf("%s: empty trace with TraceFlows=4", tc.name)
			}
			for _, n := range []int{2, 4, 8} {
				mid, end, trace := obsSnapshots(t, equivScenario(tc.spec, tc.workloads, n))
				diffJSON(t, tc.name+"/mid-counters", mid1, mid, n)
				diffJSON(t, tc.name+"/end-counters", end1, end, n)
				diffJSON(t, tc.name+"/trace", trace1, trace, n)
			}
		})
	}
}

// TestResultCountersPlane pins the plane split: the deterministic
// snapshot in Result.Counters must not carry runtime-plane series
// (per-shard event counts, handoff traffic, keyring rotations —
// anything whose value depends on the shard count or wall-clock
// scheduling), and every key must resolve to a registered metric.
func TestResultCountersPlane(t *testing.T) {
	runtime := map[string]bool{}
	for _, d := range obs.Catalog() {
		if d.Runtime {
			runtime[d.Name] = true
		}
	}
	sc := equivScenario(
		DumbbellSpec{Senders: 8, BottleneckBps: 1_600_000, ColluderASes: 2},
		[]Workload{
			LongTCP{Senders: Range(0, 2)},
			UDPFlood{Senders: Range(2, 5)},
			ColluderPairs{Senders: Range(5, 8), RateBps: 1_000_000},
		}, 2)
	sc.Duration = 10 * Second
	sc.Warmup = 4 * Second
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counters) == 0 {
		t.Fatal("Result.Counters is empty")
	}
	known := map[string]bool{}
	for _, d := range obs.Catalog() {
		known[d.Name] = true
	}
	for k := range res.Counters {
		base := k
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		for _, suf := range []string{"_bucket", "_count", "_sum"} {
			if b := strings.TrimSuffix(base, suf); b != base && known[b] {
				base = b
				break
			}
		}
		if !known[base] {
			t.Errorf("Result.Counters key %q has no registered metric", k)
		}
		if runtime[base] {
			t.Errorf("runtime-plane metric %q leaked into the deterministic snapshot", k)
		}
	}
}

// TestTraceSampling pins pay-for-what-you-sample: with TraceFlows unset
// no recorder exists and Trace is empty; with TraceFlows=n only sampled
// flows appear, and the sample set is a deterministic function of the
// seed.
func TestTraceSampling(t *testing.T) {
	sc := equivScenario(
		DumbbellSpec{Senders: 8, BottleneckBps: 1_600_000, ColluderASes: 2},
		[]Workload{
			LongTCP{Senders: Range(0, 4)},
			UDPFlood{Senders: Range(4, 8)},
		}, 1)
	sc.Duration = 10 * Second
	sc.Warmup = 4 * Second

	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	in.Finish()
	if got := in.Trace(); len(got) != 0 {
		t.Fatalf("TraceFlows=0 recorded %d events", len(got))
	}
	in.Stop()

	traced := sc
	traced.TraceFlows = 2
	in2, err := traced.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Stop()
	in2.Finish()
	events := in2.Trace()
	if len(events) == 0 {
		t.Fatal("TraceFlows=2 recorded no events")
	}
	flows := map[uint32]bool{}
	for _, ev := range events {
		flows[ev.Flow] = true
	}
	if len(flows) > 2 {
		t.Fatalf("trace covers %d flows, want at most 2 sampled", len(flows))
	}
	want := obs.SampleFlows(traced.Seed, int(in2.replicaNets()[0].FlowSeq()), 2)
	for f := range flows {
		if int(f) >= len(want) || !want[f] {
			t.Fatalf("flow %d recorded but not in the deterministic sample set", f)
		}
	}
}
