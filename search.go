package netfence

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"netfence/internal/attack"
	"netfence/internal/defense"
	"netfence/internal/search"
)

// SearchSpec drives an adversarial search: for each (defense ×
// strategy) cell it hands the strategy's declared parameter space
// (attack.ParamSpec) to a deterministic optimizer and hunts for the
// configuration that minimizes legitimate goodput — the worst attack
// the strategy can mount against that defense on Base's topology. The
// found optima feed a worst-found table (SearchReport) and the
// Theorem-1 gate: NetFence must clear its goodput floor even at the
// searched worst case, turning the BoundProbe spot check into an
// adversarially-tested claim.
//
// Determinism: the optimizer's candidate sequence is a pure function
// of (dims, Budget, Seed), candidate batches run through the same
// index-slotted parallel runner as Sweep, and cell names carry no
// shard segment — so identical Spec inputs produce a byte-identical
// report across shard counts and worker counts.
type SearchSpec struct {
	// Base is the scenario every candidate derives from. It must carry
	// at least one AttackSpec workload (the one the search re-targets
	// and re-parameterizes) and a topology. Base.Shards applies to every
	// candidate without affecting the report.
	Base Scenario
	// Defenses lists the defense systems to search against (nil = just
	// Base's defense).
	Defenses []string
	// Strategies lists the attack strategies whose parameter spaces are
	// searched (nil = every registered strategy).
	Strategies []string
	// Optimizer names the search algorithm: "grid" (default) or
	// "anneal". See netfence/internal/search.
	Optimizer string
	// Budget caps evaluated candidates per (defense × strategy) cell
	// (0 = 24).
	Budget int
	// Seed seeds the optimizer's random stream, independently per cell
	// (0 is a valid seed; it is mixed before use).
	Seed uint64
	// Nu is the BoundProbe's assumed transport efficiency ν (0 = 0.5).
	Nu float64
	// Parallelism caps concurrent candidate simulations, exactly as
	// Sweep.Parallelism (0 = GOMAXPROCS-budgeted).
	Parallelism int
	// Progress, when set, is called after each evaluated candidate with
	// the evaluation count so far, the budget-derived upper bound, and
	// the candidate's cell name. Calls are serialized. done may end
	// below total: optimizers stop early when a cell's space is
	// exhausted.
	Progress func(done, total int, cell string)
	// OnCandidate, when set, streams each evaluated candidate as a
	// SearchStep (best-so-far marked) with its cell name — the server's
	// SSE candidate feed. Calls are serialized.
	OnCandidate func(cell string, step SearchStep)
}

// SearchStep is one evaluated candidate in a cell's search trace.
type SearchStep struct {
	// Eval is the candidate's evaluation index within its cell (0 = the
	// strategy's defaults).
	Eval int `json:"eval"`
	// Attack is the candidate's canonical spec ("flood:rate_mult=4").
	Attack string `json:"attack"`
	// UserBps is the mean legitimate goodput under the candidate —
	// lower is worse for the defense.
	UserBps float64 `json:"user_bps"`
	// Best marks the steps where the incumbent worst-found improved.
	Best bool `json:"best,omitempty"`
}

// SearchRow is one (defense × strategy) cell of the worst-found table.
type SearchRow struct {
	Defense  string `json:"defense"`
	Topology string `json:"topology"`
	Strategy string `json:"strategy"`
	// Attack is the worst-found configuration's canonical spec.
	Attack string `json:"attack"`
	// Params are the worst-found parameter values (nil when the optimum
	// is the all-defaults vector).
	Params map[string]float64 `json:"params,omitempty"`
	// UserBps is the legitimate goodput at the worst-found
	// configuration; DefaultUserBps is the goodput under the strategy's
	// defaults (evaluation 0), and SuppressionBps is how much further
	// the search pushed goodput down from there.
	UserBps        float64 `json:"user_bps"`
	DefaultUserBps float64 `json:"default_user_bps"`
	SuppressionBps float64 `json:"suppression_bps"`
	AttackerBps    float64 `json:"attacker_bps"`
	// FairShareBps, BoundBps and BoundHolds restate the BoundProbe
	// verdict at the worst-found configuration; GapBps is UserBps −
	// BoundBps (how far above — or, negative, below — the Theorem-1
	// floor the defense lands at its searched worst case).
	FairShareBps float64 `json:"fair_share_bps"`
	BoundBps     float64 `json:"bound_bps"`
	BoundHolds   bool    `json:"bound_holds"`
	GapBps       float64 `json:"gap_bps"`
	// Evals is how many candidates the cell actually evaluated.
	Evals int `json:"evals"`
	// Worst marks the strategy that hurt this defense most (exactly one
	// row per defense).
	Worst bool `json:"worst"`
	// Result is the full simulation result at the worst-found
	// configuration, with SearchTrace attached.
	Result *Result `json:"-"`
}

// SearchReport is the worst-found table across every searched cell.
type SearchReport struct {
	Optimizer string      `json:"optimizer"`
	Budget    int         `json:"budget"`
	Seed      uint64      `json:"seed"`
	Rows      []SearchRow `json:"rows"`
}

// SearchOptimizers returns the available optimizer names.
func SearchOptimizers() []string { return search.Names() }

// cellSeed derives a per-cell optimizer seed from the search seed, so
// every (defense × strategy) cell walks an independent — but still
// fully reproducible — candidate sequence.
func cellSeed(seed uint64, defenseName, strategy string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s", defense.Canonical(defenseName), attack.Canonical(strategy))
	return seed ^ h.Sum64()
}

// Run executes the search. See RunContext.
func (s SearchSpec) Run() (*SearchReport, error) {
	return s.RunContext(context.Background())
}

// Validate checks the spec without running anything: the topology, the
// searched-over attack workload, the optimizer name, the budget, and
// every defense/strategy name. RunContext performs the same checks; the
// simulation service calls this at submit time so a bad spec fails the
// POST, not the job.
func (s SearchSpec) Validate() error {
	_, _, _, _, err := s.resolve()
	return err
}

// resolve validates the spec and fills its defaults.
func (s SearchSpec) resolve() (opt search.Optimizer, budget int, defenses, strategies []string, err error) {
	if s.Base.Topology == nil {
		return nil, 0, nil, nil, errors.New("netfence: SearchSpec.Base needs a topology")
	}
	hasAttack := false
	for _, w := range s.Base.Workloads {
		if _, ok := w.(AttackSpec); ok {
			hasAttack = true
			break
		}
	}
	if !hasAttack {
		return nil, 0, nil, nil, errors.New("netfence: SearchSpec.Base has no AttackSpec workload to search over")
	}
	opt, err = search.New(s.Optimizer)
	if err != nil {
		return nil, 0, nil, nil, err
	}
	budget = s.Budget
	if budget == 0 {
		budget = 24
	}
	if budget < 1 {
		return nil, 0, nil, nil, fmt.Errorf("netfence: SearchSpec.Budget %d must be positive", budget)
	}
	defenses = s.Defenses
	if len(defenses) == 0 {
		name := s.Base.Defense.Name
		if name == "" {
			name = "netfence"
		}
		defenses = []string{name}
	}
	for i, d := range defenses {
		if !defenseRegistered(d) {
			return nil, 0, nil, nil, fmt.Errorf("netfence: SearchSpec defense %q (index %d) is not a registered system (registered: %s)",
				d, i, strings.Join(defense.Names(), ", "))
		}
	}
	strategies = s.Strategies
	if len(strategies) == 0 {
		strategies = attack.Names()
	}
	for i, st := range strategies {
		if !attack.Registered(st) {
			return nil, 0, nil, nil, fmt.Errorf("netfence: SearchSpec strategy %q (index %d) is not a registered strategy (registered: %s)",
				st, i, strings.Join(attack.Names(), ", "))
		}
	}
	return opt, budget, defenses, strategies, nil
}

// RunContext is Run under a context: cancelling aborts between
// candidate batches (in-flight simulations finish), returning the
// context error.
func (s SearchSpec) RunContext(ctx context.Context) (*SearchReport, error) {
	opt, budget, defenses, strategies, err := s.resolve()
	if err != nil {
		return nil, err
	}

	report := &SearchReport{Optimizer: opt.Name(), Budget: budget, Seed: s.Seed, Rows: make([]SearchRow, 0, len(defenses)*len(strategies))}
	total := len(defenses) * len(strategies) * budget
	done := 0
	for _, d := range defenses {
		defStart := len(report.Rows)
		for _, st := range strategies {
			row, evals, err := s.runCell(ctx, opt, d, st, budget, &done, total)
			if err != nil {
				return nil, fmt.Errorf("netfence: search cell %s/%s: %w", defense.Canonical(d), attack.Canonical(st), err)
			}
			row.Evals = evals
			report.Rows = append(report.Rows, row)
		}
		// Mark the defense's worst row: minimum goodput, first wins ties.
		worst := defStart
		for i := defStart + 1; i < len(report.Rows); i++ {
			if report.Rows[i].UserBps < report.Rows[worst].UserBps {
				worst = i
			}
		}
		report.Rows[worst].Worst = true
	}
	return report, nil
}

// runCell searches one (defense × strategy) cell and assembles its row.
func (s SearchSpec) runCell(ctx context.Context, opt search.Optimizer, d, st string, budget int, done *int, total int) (SearchRow, int, error) {
	dims, err := attack.Params(st)
	if err != nil {
		return SearchRow{}, 0, err
	}
	cell := fmt.Sprintf("%s/%s", defense.Canonical(d), attack.Canonical(st))
	byKey := map[string]*Result{}
	var trace []SearchStep
	bestUser := 0.0
	eval := func(batch []search.Vec) ([]float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		scs := make([]Scenario, len(batch))
		specs := make([]string, len(batch))
		for i, v := range batch {
			params := v.Params(dims)
			scs[i] = s.cellScenario(d, st, params)
			specs[i] = attack.FormatSpec(st, params)
		}
		results, err := runParallelCtx(ctx, scs, s.Parallelism, nil)
		if err != nil {
			return nil, err
		}
		damages := make([]float64, len(batch))
		for i, r := range results {
			byKey[specs[i]] = r
			damages[i] = -r.UserBps
			step := SearchStep{Eval: len(trace), Attack: specs[i], UserBps: r.UserBps}
			if len(trace) == 0 || r.UserBps < bestUser {
				bestUser = r.UserBps
				step.Best = true
			}
			trace = append(trace, step)
			*done++
			if s.Progress != nil {
				s.Progress(*done, total, cell)
			}
			if s.OnCandidate != nil {
				s.OnCandidate(cell, step)
			}
		}
		return damages, nil
	}
	best, optTrace, err := opt.Run(dims, budget, cellSeed(s.Seed, d, st), eval)
	if err != nil {
		return SearchRow{}, 0, err
	}
	if len(optTrace) == 0 {
		return SearchRow{}, 0, errors.New("optimizer evaluated no candidates")
	}
	params := best.Params(dims)
	spec := attack.FormatSpec(st, params)
	res := byKey[spec]
	if res == nil {
		return SearchRow{}, 0, fmt.Errorf("optimizer returned unevaluated best %q", spec)
	}
	res.SearchTrace = trace
	row := SearchRow{
		Defense:        res.Defense,
		Topology:       res.Topology,
		Strategy:       attack.Canonical(st),
		Attack:         spec,
		Params:         params,
		UserBps:        res.UserBps,
		DefaultUserBps: trace[0].UserBps,
		AttackerBps:    res.AttackerBps,
		FairShareBps:   res.FairShareBps,
		BoundBps:       res.BoundBps,
		BoundHolds:     res.BoundHolds,
		GapBps:         res.UserBps - res.BoundBps,
		Result:         res,
	}
	row.SuppressionBps = row.DefaultUserBps - row.UserBps
	return row, len(optTrace), nil
}

// cellScenario derives one candidate scenario: Base with the cell's
// defense, the candidate's attack configuration, and the search's
// fixed probe set. The name carries no shard segment, so the report is
// identical across shard counts.
func (s SearchSpec) cellScenario(d, st string, params map[string]float64) Scenario {
	sc := s.Base
	// A system-specific config only survives onto its own system — the
	// Sweep defense-axis rule.
	baseDefense := defense.Canonical(sc.Defense.Name)
	if baseDefense == "" {
		baseDefense = "netfence"
	}
	cellConfig := sc.Defense.Config
	sc.Defense = DefenseSpec{Name: d}
	if defense.Canonical(d) == baseDefense {
		sc.Defense.Config = cellConfig
	}
	sc.Workloads = retargetAttacks(sc.Workloads, st, params)
	sc.Probes = []Probe{GoodputProbe{}, FairnessProbe{}, FCTProbe{}, BoundProbe{Nu: s.Nu}}
	baseName := sc.Name
	if baseName == "" {
		baseName = "search"
	}
	sc.Name = fmt.Sprintf("%s/%s/attack=%s/seed=%d", baseName, defense.Canonical(d), attack.FormatSpec(st, params), sc.Seed)
	return sc
}

// defenseRegistered reports whether a defense name resolves in the
// registry.
func defenseRegistered(name string) bool {
	c := defense.Canonical(name)
	for _, n := range defense.Names() {
		if n == c {
			return true
		}
	}
	return false
}

// Gate enforces the Theorem-1 contract on the report: every netfence
// row must clear the goodput floor at its searched worst case. Other
// systems are expected to fall below the floor — that is the point of
// the comparison — so they never fail the gate.
func (r *SearchReport) Gate() error {
	var errs []error
	for _, row := range r.Rows {
		if defense.Canonical(row.Defense) != "netfence" {
			continue
		}
		if !row.BoundHolds {
			errs = append(errs, fmt.Errorf(
				"netfence: searched worst case %s drives user goodput %.0f bps below the Theorem-1 floor %.0f bps",
				row.Attack, row.UserBps, row.BoundBps))
		}
	}
	return errors.Join(errs...)
}

// JSON renders the report as indented JSON (the -search-out artifact).
func (r *SearchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the worst-found table: one row per (defense ×
// strategy) cell, the defense's overall worst strategy starred.
func (r *SearchReport) Table() string {
	cols := []string{"defense", "strategy", "worst attack", "user kbps", "default", "suppress", "floor", "gap", "holds", "evals"}
	rows := [][]string{}
	for _, row := range r.Rows {
		star := ""
		if row.Worst {
			star = "*"
		}
		rows = append(rows, []string{
			row.Defense + star, row.Strategy, row.Attack,
			fmt.Sprintf("%.0f", row.UserBps/1000),
			fmt.Sprintf("%.0f", row.DefaultUserBps/1000),
			fmt.Sprintf("%.0f", row.SuppressionBps/1000),
			fmt.Sprintf("%.0f", row.BoundBps/1000),
			fmt.Sprintf("%.0f", row.GapBps/1000),
			fmt.Sprintf("%v", row.BoundHolds),
			fmt.Sprintf("%d", row.Evals),
		})
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "worst-found table (optimizer=%s budget=%d seed=%d; * = defense's worst strategy)\n",
		r.Optimizer, r.Budget, r.Seed)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(cols)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		line(row)
	}
	return b.String()
}
