package netfence

import (
	"encoding/json"
	"fmt"
	"testing"

	"netfence/internal/core"
)

// passportCfg is DefaultConfig with Passport source authentication
// enabled — the configuration under which the sharded validation
// pipeline has CMAC work to precompute.
func passportCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Passport = true
	return cfg
}

// passportEquiv is equivScenario under Passport with an explicit
// pipeline mode.
func passportEquiv(spec TopologySpec, wl []Workload, shards int, pipe PipelineMode) Scenario {
	sc := equivScenario(spec, wl, shards)
	sc.Defense = DefenseSpec{Name: "netfence", Config: passportCfg()}
	sc.Pipeline = pipe
	return sc
}

// runWithInstance runs a scenario and returns the Result JSON plus the
// finished Instance, for runtime-counter and Sharding introspection.
func runWithInstance(t *testing.T, sc Scenario) (string, *Instance) {
	t.Helper()
	in, err := sc.Build()
	if err != nil {
		t.Fatalf("%s (shards=%d, pipeline=%v): %v", sc.Name, sc.Shards, sc.Pipeline, err)
	}
	raw, err := json.Marshal(in.Run())
	if err != nil {
		t.Fatal(err)
	}
	return string(raw), in
}

// pipelineEquivWorkloads is the shared workload mix of the pipeline
// equivalence suite (the same mix the sharded golden gate runs).
func pipelineEquivWorkloads() []Workload {
	return []Workload{
		LongTCP{Senders: Range(0, 5)},
		UDPFlood{Senders: Range(5, 12)},
		ColluderPairs{Senders: Range(12, 20), RateBps: 1_000_000},
	}
}

// TestPipelineEquivalence is the golden gate of the validation
// pipeline: on dumbbell and random-as under full Passport deployment,
// the sharded run with the pipeline ON, the sharded run with the
// pipeline OFF, and the single engine must produce byte-identical
// Result JSON at every shard count. The ON runs must actually
// precompute (counters prove the pipeline was exercised, not quietly
// disabled).
func TestPipelineEquivalence(t *testing.T) {
	cases := []struct {
		name   string
		spec   TopologySpec
		shards []int
	}{
		{
			name:   "dumbbell",
			spec:   DumbbellSpec{Senders: 20, BottleneckBps: 4_000_000, ColluderASes: 3},
			shards: []int{2, 4, 8},
		},
		{
			name:   "random-as",
			spec:   RandomASSpec{Senders: 20, BottleneckBps: 4_000_000, TransitASes: 4, ExtraLinks: 2, ColluderASes: 3, GraphSeed: 3},
			shards: []int{2, 4, 8},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			single := resultJSON(t, passportEquiv(tc.spec, pipelineEquivWorkloads(), 1, PipelineAuto))
			for _, n := range tc.shards {
				for _, pipe := range []PipelineMode{PipelineOff, PipelineOn} {
					got, in := runWithInstance(t, passportEquiv(tc.spec, pipelineEquivWorkloads(), n, pipe))
					diffJSON(t, fmt.Sprintf("%s pipeline=%v", tc.name, pipe), single, got, n)
					on := pipe == PipelineOn
					if in.Sharding == nil || in.Sharding.Pipeline != on {
						t.Fatalf("%s shards=%d: Sharding.Pipeline = %v, want %v", tc.name, n, in.Sharding.Pipeline, on)
					}
					rc := in.RuntimeCounters()
					if on && rc["pipeline_precompute_total"] == 0 {
						t.Fatalf("%s shards=%d: pipeline on but nothing precomputed: %v", tc.name, n, rc)
					}
					if on && rc["pipeline_precompute_hit_total"] == 0 {
						t.Fatalf("%s shards=%d: precomputed verdicts never consumed", tc.name, n)
					}
					if !on && rc["pipeline_validation_batch_total"] != 0 {
						t.Fatalf("%s shards=%d: pipeline off but batches ran", tc.name, n)
					}
				}
			}
		})
	}
}

// TestPipelineAutoMode pins the auto resolution: with Passport on, auto
// enables the pipeline; under the default config (Passport off) it
// stays off and byte-identity with the pre-pipeline executor holds by
// construction.
func TestPipelineAutoMode(t *testing.T) {
	spec := DumbbellSpec{Senders: 20, BottleneckBps: 4_000_000, ColluderASes: 3}
	single := resultJSON(t, passportEquiv(spec, pipelineEquivWorkloads(), 1, PipelineAuto))
	got, in := runWithInstance(t, passportEquiv(spec, pipelineEquivWorkloads(), 4, PipelineAuto))
	diffJSON(t, "auto+passport", single, got, 4)
	if !in.Sharding.Pipeline {
		t.Fatal("auto mode with Passport should enable the pipeline")
	}
	_, in = runWithInstance(t, equivScenario(spec, pipelineEquivWorkloads(), 4))
	if in.Sharding.Pipeline {
		t.Fatal("auto mode without Passport should keep the pipeline off")
	}
}

// TestPipelineRotationFallback shrinks KeyRotate so lookahead windows
// straddle rotation boundaries: the pipeline must fall back to inline
// validation for arrivals past each boundary (the counter proves the
// straddle happened) and stay byte-identical to the single engine.
func TestPipelineRotationFallback(t *testing.T) {
	spec := DumbbellSpec{Senders: 20, BottleneckBps: 4_000_000, ColluderASes: 3}
	mk := func(shards int, pipe PipelineMode) Scenario {
		sc := equivScenario(spec, pipelineEquivWorkloads(), shards)
		cfg := passportCfg()
		cfg.KeyRotate = 6 * Second // > WSec, several rotations inside the 30 s run
		sc.Defense = DefenseSpec{Name: "netfence", Config: cfg}
		sc.Pipeline = pipe
		return sc
	}
	single := resultJSON(t, mk(1, PipelineAuto))
	for _, n := range []int{2, 4} {
		got, in := runWithInstance(t, mk(n, PipelineOn))
		diffJSON(t, "rotation-straddle", single, got, n)
		rc := in.RuntimeCounters()
		if rc["pipeline_rotation_fallback_total"] == 0 {
			t.Fatalf("shards=%d: no rotation fallbacks — the straddle scenario is not exercising the boundary rule: %v", n, rc)
		}
		if rc["pipeline_precompute_total"] == 0 {
			t.Fatalf("shards=%d: rotation fallback disabled precompute entirely", n)
		}
	}
}

// TestPipelineForgedMAC drives the forged-MAC adversary — the replay
// strategy presenting stale feedback plus rogue legacy ASes whose hosts
// run no shim (no valid stamps at all) — under partial deployment:
// precomputed *invalid* verdicts must demote exactly as inline
// validation does, byte for byte.
func TestPipelineForgedMAC(t *testing.T) {
	spec := DumbbellSpec{Senders: 20, BottleneckBps: 4_000_000, ColluderASes: 3}
	wl := []Workload{
		LongTCP{Senders: Range(0, 5)},
		AttackSpec{Strategy: "replay", Senders: Range(5, 12), RateBps: 1_000_000},
		ColluderPairs{Senders: Range(12, 20), RateBps: 1_000_000},
	}
	mk := func(shards int, pipe PipelineMode) Scenario {
		sc := passportEquiv(spec, wl, shards, pipe)
		sc.Deployment = DeployFraction(0.5) // rogue half: no shim, no stamps
		return sc
	}
	single := resultJSON(t, mk(1, PipelineAuto))
	for _, n := range []int{2, 4} {
		for _, pipe := range []PipelineMode{PipelineOff, PipelineOn} {
			got, in := runWithInstance(t, mk(n, pipe))
			diffJSON(t, fmt.Sprintf("forged-mac pipeline=%v", pipe), single, got, n)
			if pipe == PipelineOn && in.RuntimeCounters()["pipeline_validation_packet_total"] == 0 {
				t.Fatalf("shards=%d: pipeline on but examined no handoff packets", n)
			}
		}
	}
}

// TestPipelineRace is a short Passport-enabled pipeline-on run for the
// race detector: drain-phase workers cloning CMAC state and writing
// packet-resident verdicts while the coordinator parks the shards.
func TestPipelineRace(t *testing.T) {
	sc := passportEquiv(
		DumbbellSpec{Senders: 8, BottleneckBps: 1_600_000, ColluderASes: 2},
		[]Workload{
			LongTCP{Senders: Range(0, 2)},
			UDPFlood{Senders: Range(2, 5)},
			ColluderPairs{Senders: Range(5, 8), RateBps: 1_000_000},
		}, 4, PipelineOn)
	sc.Duration = 10 * Second
	sc.Warmup = 4 * Second
	if _, err := sc.Run(); err != nil {
		t.Fatal(err)
	}
}
