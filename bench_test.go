// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B benchmark per artifact.
//
// The Fig7 benchmarks are genuine micro-benchmarks of the per-packet
// data-path operations (ns/op is directly comparable to the paper's
// Figure 7 table). The macro benchmarks (Fig8-Fig14, Theorem) each run
// one full simulation cell at tiny scale per iteration; run them with
// -benchtime=1x for a single regeneration, and use cmd/netfence-sim for
// the full tables at larger scales:
//
//	go test -bench . -benchmem -benchtime=1x
package netfence_test

import (
	"testing"

	"netfence/internal/cmac"
	"netfence/internal/exp"
	"netfence/internal/feedback"
	"netfence/internal/header"
	"netfence/internal/packet"
)

// --- Figure 7: per-packet processing overhead (micro) ---

func fig7Keys() (*feedback.KeyRing, *cmac.CMAC, feedback.KaiLookup) {
	var ka, kaiKey cmac.Key
	ka[0], kaiKey[0] = 1, 2
	kai := cmac.New(kaiKey)
	return feedback.NewKeyRingFromKey(ka), kai, func(packet.LinkID) *cmac.CMAC { return kai }
}

// BenchmarkFig7AccessRequest measures the access router stamping nop
// feedback into a request packet (paper: 546 ns).
func BenchmarkFig7AccessRequest(b *testing.B) {
	ring, _, _ := fig7Keys()
	var buf [header.MaxSize]byte
	h := header.Header{Ver: header.Version, Request: true, Proto: packet.ProtoTCP}
	header.Encode(buf[:], &h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := header.AccessStampRequest(buf[:], ring, 10, 20, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7BottleneckRequestAttack measures a monitored bottleneck
// stamping L-down into a request packet (paper: 492 ns).
func BenchmarkFig7BottleneckRequestAttack(b *testing.B) {
	ring, kai, _ := fig7Keys()
	var buf [header.MaxSize]byte
	h := header.Header{Ver: header.Version, Request: true, Proto: packet.ProtoTCP}
	header.Encode(buf[:], &h)
	header.AccessStampRequest(buf[:], ring, 10, 20, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		header.AccessStampRequest(buf[:], ring, 10, 20, 100) // restore nop
		if _, _, err := header.BottleneckStampMon(buf[:], kai, 7, 10, 20, true, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7BottleneckRegularAttack measures L-up being overwritten
// with L-down on a regular packet (paper: 554 ns).
func BenchmarkFig7BottleneckRegularAttack(b *testing.B) {
	ring, kai, _ := fig7Keys()
	var buf [header.MaxSize]byte
	mk := func() int {
		p := packet.Packet{Src: 10, Dst: 20}
		feedback.StampIncr(ring.Current(), &p, 100, 7)
		h := header.Header{Ver: header.Version, Proto: packet.ProtoTCP, FB: p.FB}
		return header.Encode(buf[:], &h)
	}
	mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mk()
		if _, _, err := header.BottleneckStampMon(buf[:], kai, 7, 10, 20, true, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7AccessRegularIdle measures validating and refreshing nop
// feedback on a regular packet outside attack times (paper: 781 ns).
func BenchmarkFig7AccessRegularIdle(b *testing.B) {
	ring, _, lookup := fig7Keys()
	var buf [header.MaxSize]byte
	p := packet.Packet{Src: 10, Dst: 20}
	feedback.StampNop(ring.Current(), &p, 100)
	h := header.Header{Ver: header.Version, Proto: packet.ProtoTCP, FB: p.FB}
	header.Encode(buf[:], &h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := header.AccessProcessRegular(buf[:], ring, lookup, 10, 20, 100, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7AccessRegularAttack measures the heaviest path: validate
// presented L-down (token_nop recomputation + Eq. 3) and restamp L-up
// with a fresh token_nop (paper: 1267 ns).
func BenchmarkFig7AccessRegularAttack(b *testing.B) {
	ring, kai, lookup := fig7Keys()
	var buf [header.MaxSize]byte
	mk := func() int {
		p := packet.Packet{Src: 10, Dst: 20}
		feedback.StampNop(ring.Current(), &p, 100)
		feedback.StampDecr(kai, &p, 7)
		h := header.Header{Ver: header.Version, Proto: packet.ProtoTCP, FB: p.FB}
		return header.Encode(buf[:], &h)
	}
	mk()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mk()
		if _, _, err := header.AccessProcessRegular(buf[:], ring, lookup, 10, 20, 100, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Macro benchmarks: one simulation cell per iteration (tiny scale) ---

// benchResult keeps results alive so the compiler cannot elide the runs.
var benchResult string

func benchRunner(b *testing.B, name string) {
	b.Helper()
	r, err := exp.RunnerByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := r.Run(exp.Tiny)
		benchResult = res.Table()
	}
}

// BenchmarkFig8 regenerates the unwanted-traffic flooding table.
func BenchmarkFig8(b *testing.B) { benchRunner(b, "fig8") }

// BenchmarkFig9a regenerates the long-running-TCP collusion table.
func BenchmarkFig9a(b *testing.B) { benchRunner(b, "fig9a") }

// BenchmarkFig9b regenerates the web-traffic collusion table.
func BenchmarkFig9b(b *testing.B) { benchRunner(b, "fig9b") }

// BenchmarkFig10 regenerates the parking-lot table (core design).
func BenchmarkFig10(b *testing.B) { benchRunner(b, "fig10") }

// BenchmarkFig11 regenerates the on-off attack table.
func BenchmarkFig11(b *testing.B) { benchRunner(b, "fig11") }

// BenchmarkFig13 regenerates the B.1 multi-feedback parking-lot table.
func BenchmarkFig13(b *testing.B) { benchRunner(b, "fig13") }

// BenchmarkFig14 regenerates the B.2 inference parking-lot table.
func BenchmarkFig14(b *testing.B) { benchRunner(b, "fig14") }

// BenchmarkTheorem regenerates the fair-share bound check.
func BenchmarkTheorem(b *testing.B) { benchRunner(b, "theorem") }

// BenchmarkHeaderSizes regenerates the §6.1 size table.
func BenchmarkHeaderSizes(b *testing.B) { benchRunner(b, "header") }

// BenchmarkSimulatorThroughput measures raw simulator speed: packet
// events per second through a NetFence-protected bottleneck under the
// tiny collusion workload. Useful for sizing larger scales.
func BenchmarkSimulatorThroughput(b *testing.B) {
	r, err := exp.RunnerByName("fig9a")
	if err != nil {
		b.Fatal(err)
	}
	sc := exp.Tiny
	sc.Labels = []int{100_000}
	for i := 0; i < b.N; i++ {
		res := r.Run(sc)
		benchResult = res.Table()
	}
}
