package netfence

import (
	"fmt"
	"strings"

	"netfence/internal/attack"
	"netfence/internal/metrics"
)

// Probe measures a scenario run and writes its findings into the Result.
// Probes share the central measurement window: meters are snapshotted at
// Warmup and read at Duration.
type Probe interface {
	install(env *scenarioEnv) error
	finish(env *scenarioEnv, res *Result)
}

// Result is one scenario's measured outcome: pure data, identical across
// reruns of the same seed, so sweep results can be compared directly.
type Result struct {
	Scenario string
	Defense  string
	// Topology is the registry-style name of the scenario's topology
	// ("dumbbell", "parkinglot", "star", "random-as", ...), so sweep
	// output is self-describing.
	Topology string
	// Attack lists the canonical attack-strategy names of the
	// scenario's AttackSpec workloads ("+"-joined; empty when the
	// scenario declares none).
	Attack string
	Seed   uint64
	// Senders is the topology's total sender population.
	Senders int
	// Deployed is the effective fraction of source ASes running the
	// defense (1 = full deployment).
	Deployed               float64
	DurationSec, WarmupSec float64

	// GoodputProbe: mean post-warmup goodput of user and attacker
	// senders, their ratio (the paper's headline fairness metric), the
	// per-sender rates behind the means, and bottleneck utilization.
	UserBps, AttackerBps float64
	Ratio                float64
	UserRates            []float64
	AttackerRates        []float64
	Utilization          float64

	// FairnessProbe: Jain's index across user senders.
	Jain float64

	// BoundProbe: the per-sender fair share, the discounted Theorem-1
	// goodput floor ν·ρ·C/(G+B), and whether the measured mean user
	// goodput clears it.
	FairShareBps float64
	BoundBps     float64
	BoundHolds   bool

	// FCTProbe: transfer-completion aggregate of the file and web
	// workloads.
	FCT FCTSummary

	// TimeseriesProbe: per-interval samples.
	Series []Sample

	// Counters is the deterministic observability snapshot: every
	// packet-path counter, gauge and histogram series with a non-zero
	// value, merged across shards (see the metric catalog in
	// Metrics()). Byte-identical across shard counts; runtime-plane
	// metrics (per-shard event counts, handoff batches) are deliberately
	// excluded — read them with Instance.RuntimeCounters.
	Counters map[string]uint64

	// SearchTrace, on a result produced by an adversarial search (see
	// SearchSpec), records the candidate sequence that led the optimizer
	// to this configuration — provenance for the worst-found table. nil
	// on directly-run scenarios.
	SearchTrace []SearchStep
}

// FCTSummary condenses the flow-completion-time aggregate.
type FCTSummary struct {
	Count, Failed   int
	MeanSec, P95Sec float64
	Completion      float64
}

// Sample is one timeseries interval.
type Sample struct {
	// TimeSec is the interval's end, in simulated seconds.
	TimeSec float64
	// UserBps and AttackerBps are aggregate goodput over the interval.
	UserBps, AttackerBps float64
	// Monitoring reports whether the NetFence bottleneck was in its
	// monitoring cycle at the sample instant (false for other defenses).
	Monitoring bool
}

// String renders the one-line summary of a result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s", r.Scenario, r.Defense)
	if r.Topology != "" {
		fmt.Fprintf(&b, " %s", r.Topology)
	}
	if r.Attack != "" {
		fmt.Fprintf(&b, " atk=%s", r.Attack)
	}
	fmt.Fprintf(&b, " seed=%d n=%d", r.Seed, r.Senders)
	if r.Deployed < 1 {
		fmt.Fprintf(&b, " deploy=%.0f%%", 100*r.Deployed)
	}
	b.WriteString("]")
	if r.UserBps > 0 || r.AttackerBps > 0 {
		fmt.Fprintf(&b, " user=%.0fkbps attacker=%.0fkbps ratio=%.2f jain=%.2f util=%.0f%%",
			r.UserBps/1000, r.AttackerBps/1000, r.Ratio, r.Jain, 100*r.Utilization)
	}
	if r.BoundBps > 0 {
		fmt.Fprintf(&b, " floor=%.0fkbps holds=%v", r.BoundBps/1000, r.BoundHolds)
	}
	if r.FCT.Count+r.FCT.Failed > 0 {
		fmt.Fprintf(&b, " fct=%.2fs p95=%.2fs completion=%.0f%%",
			r.FCT.MeanSec, r.FCT.P95Sec, 100*r.FCT.Completion)
	}
	return b.String()
}

// FormatResults renders a result set as an aligned table — the unified
// output of RunAll and Sweep.Run.
func FormatResults(results []*Result) string {
	cols := []string{"scenario", "defense", "topo", "attack", "seed", "senders", "deploy",
		"user kbps", "atk kbps", "ratio", "jain", "util", "fct(s)", "compl"}
	rows := [][]string{}
	for _, r := range results {
		if r == nil {
			continue
		}
		fctMean, compl := "-", "-"
		if r.FCT.Count+r.FCT.Failed > 0 {
			fctMean = fmt.Sprintf("%.2f", r.FCT.MeanSec)
			compl = fmt.Sprintf("%.0f%%", 100*r.FCT.Completion)
		}
		topoName := r.Topology
		if topoName == "" {
			topoName = "-"
		}
		atkName := r.Attack
		if atkName == "" {
			atkName = "-"
		}
		rows = append(rows, []string{
			r.Scenario, r.Defense, topoName, atkName,
			fmt.Sprintf("%d", r.Seed), fmt.Sprintf("%d", r.Senders),
			fmt.Sprintf("%.0f%%", 100*r.Deployed),
			fmt.Sprintf("%.0f", r.UserBps/1000), fmt.Sprintf("%.0f", r.AttackerBps/1000),
			fmt.Sprintf("%.2f", r.Ratio), fmt.Sprintf("%.2f", r.Jain),
			fmt.Sprintf("%.0f%%", 100*r.Utilization), fctMean, compl,
		})
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(cols)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// GoodputProbe measures post-warmup goodput: per-sender rates, user and
// attacker means, their ratio, and bottleneck utilization.
type GoodputProbe struct{}

func (GoodputProbe) install(*scenarioEnv) error { return nil }

func (GoodputProbe) finish(env *scenarioEnv, res *Result) {
	window := (env.duration - env.warmup).Seconds()
	if window <= 0 {
		return
	}
	if !env.hasFleetMeters() {
		// Fleet-free runs keep the historical arithmetic bit for bit.
		for _, m := range env.meters {
			rate := float64(m.bytes()-m.warmMark) * 8 / window
			if m.attacker {
				res.AttackerRates = append(res.AttackerRates, rate)
			} else {
				res.UserRates = append(res.UserRates, rate)
			}
		}
		res.UserBps, _ = metrics.MeanStd(res.UserRates)
		res.AttackerBps, _ = metrics.MeanStd(res.AttackerRates)
	} else {
		// Weighted means: a fleet meter's aggregate bytes stand for
		// weight senders, so the population mean is Σ aggregate / Σ
		// weight, and the recorded per-sender rate is aggregate/weight.
		var userSum, userW, atkSum, atkW float64
		for _, m := range env.meters {
			agg := float64(m.bytes()-m.warmMark) * 8 / window
			w := float64(m.weight)
			if m.attacker {
				res.AttackerRates = append(res.AttackerRates, agg/w)
				atkSum += agg
				atkW += w
			} else {
				res.UserRates = append(res.UserRates, agg/w)
				userSum += agg
				userW += w
			}
		}
		if userW > 0 {
			res.UserBps = userSum / userW
		}
		if atkW > 0 {
			res.AttackerBps = atkSum / atkW
		}
	}
	if res.AttackerBps > 0 {
		res.Ratio = res.UserBps / res.AttackerBps
	}
	for i, l := range env.bottlenecks {
		if i >= len(env.txWarmMarks) {
			break
		}
		if u := l.Utilization(env.txWarmMarks[i], env.duration-env.warmup); u > res.Utilization {
			res.Utilization = u
		}
	}
}

// FairnessProbe computes Jain's fairness index across the user senders'
// post-warmup goodput.
type FairnessProbe struct{}

func (FairnessProbe) install(*scenarioEnv) error { return nil }

func (FairnessProbe) finish(env *scenarioEnv, res *Result) {
	window := (env.duration - env.warmup).Seconds()
	if window <= 0 {
		return
	}
	if !env.hasFleetMeters() {
		var rates []float64
		for _, m := range env.meters {
			if !m.attacker {
				rates = append(rates, float64(m.bytes()-m.warmMark)*8/window)
			}
		}
		res.Jain = metrics.Jain(rates)
		return
	}
	// Fleet meters enter the index once per modeled sender, all at the
	// fleet's per-sender rate: (Σ w·x)² / (Σw · Σ w·x²).
	var rates, weights []float64
	for _, m := range env.meters {
		if !m.attacker {
			rates = append(rates, float64(m.bytes()-m.warmMark)*8/window/float64(m.weight))
			weights = append(weights, float64(m.weight))
		}
	}
	res.Jain = metrics.JainWeighted(rates, weights)
}

// FCTProbe summarizes the transfer completion times collected by the
// file and web workloads.
type FCTProbe struct{}

func (FCTProbe) install(*scenarioEnv) error { return nil }

func (FCTProbe) finish(env *scenarioEnv, res *Result) {
	f := env.mergedFCT()
	res.FCT = FCTSummary{
		Count:      f.Count(),
		Failed:     f.Failed(),
		MeanSec:    f.Mean().Seconds(),
		P95Sec:     f.Percentile(95).Seconds(),
		Completion: f.CompletionRatio(),
	}
}

// BoundProbe computes the Theorem-1 (§3.4, Appendix A) fair-share floor
// for the scenario and checks the measured mean user goodput against it.
// Appendix A bounds the rate LIMIT of any sender with sufficient demand:
// r_a ≥ ρ·C/(G+B) with ρ = (1-MD)³, in every steady-state control
// interval, regardless of the attackers' strategy; realized goodput is
// ν·r_a for a transport of efficiency ν. The probe therefore records the
// discounted floor ν·ρ·C/(G+B) in Result.BoundBps and whether the mean
// user goodput clears it in Result.BoundHolds — the guarantee a defense
// must keep under every adaptive strategy, which the strategic
// experiment sweeps.
type BoundProbe struct {
	// Nu is the assumed transport efficiency ν discounting the
	// rate-limit bound down to a goodput floor (0 = 0.5, conservative
	// for the evaluation's TCP workloads at small scales).
	Nu float64
}

func (BoundProbe) install(env *scenarioEnv) error {
	// The floor ρ·C/(G+B) is a single-link statement: on a
	// multi-bottleneck topology the sender groups traverse different
	// links, so dividing one link's capacity by every group's senders
	// would deflate the floor into a vacuously-passing check. Fail fast
	// instead.
	if len(env.bottlenecks) != 1 {
		return fmt.Errorf("BoundProbe: the Theorem-1 floor needs a single-bottleneck topology (this one tags %d)", len(env.bottlenecks))
	}
	return nil
}

func (p BoundProbe) finish(env *scenarioEnv, res *Result) {
	window := (env.duration - env.warmup).Seconds()
	if window <= 0 {
		return
	}
	senders := env.builtTopo.senderCount()
	if senders == 0 {
		return
	}
	nu := p.Nu
	if nu <= 0 {
		nu = attack.DefaultNu
	}
	res.FairShareBps = float64(env.bottleneckBps()) / float64(senders)
	res.BoundBps = nu * attack.TheoremBound(env.nfConfig(), env.bottleneckBps(), senders)
	// Measured independently of GoodputProbe so probe order is free.
	if !env.hasFleetMeters() {
		var rates []float64
		for _, m := range env.meters {
			if !m.attacker {
				rates = append(rates, float64(m.bytes()-m.warmMark)*8/window)
			}
		}
		mean, _ := metrics.MeanStd(rates)
		res.BoundHolds = len(rates) > 0 && mean >= res.BoundBps
		return
	}
	var sum, wsum float64
	for _, m := range env.meters {
		if !m.attacker {
			sum += float64(m.bytes()-m.warmMark) * 8 / window
			wsum += float64(m.weight)
		}
	}
	res.BoundHolds = wsum > 0 && sum/wsum >= res.BoundBps
}

// TimeseriesProbe samples aggregate user and attacker goodput every
// Interval over the whole run (not just post-warmup), tagging each sample
// with the NetFence monitoring-cycle state where applicable.
type TimeseriesProbe struct {
	// Interval is the sampling period (0 = 10 s).
	Interval Time
}

func (p TimeseriesProbe) install(env *scenarioEnv) error {
	interval := p.Interval
	if interval <= 0 {
		interval = 10 * Second
	}
	if env.sh != nil {
		return p.installSharded(env, interval)
	}
	env.eng.Tick(interval, func() {
		secs := interval.Seconds()
		var user, atk float64
		for _, m := range env.meters {
			cur := m.bytes()
			rate := float64(cur-m.tickMark) * 8 / secs
			m.tickMark = cur
			if m.attacker {
				atk += rate
			} else {
				user += rate
			}
		}
		s := Sample{
			TimeSec:     env.eng.Now().Seconds(),
			UserBps:     user,
			AttackerBps: atk,
		}
		if env.nfBottleneck != nil {
			s.Monitoring = env.nfBottleneck.Monitoring()
		}
		env.series = append(env.series, s)
	})
	return nil
}

// installSharded ticks every shard at the same simulated instants: each
// shard records its own meters' per-interval rates (and the NetFence
// bottleneck's shard the monitoring flag), and finish sums them in
// global meter order — the single-engine accumulation order, so the
// samples come out bit-identical.
func (p TimeseriesProbe) installSharded(env *scenarioEnv, interval Time) error {
	secs := interval.Seconds()
	monShard := -1
	if env.nfBottleneck != nil && len(env.bottlenecks) > 0 {
		monShard = env.sh.shardOf(env.bottlenecks[0].From.ID)
	}
	// Meter ownership is fixed at attach time; bucket once so each
	// shard's tick touches only its own meters instead of scanning the
	// whole population behind the window barrier.
	buckets := make([][]*goodputMeter, len(env.sh.engines))
	for _, m := range env.meters {
		buckets[m.shard] = append(buckets[m.shard], m)
	}
	for i, eng := range env.sh.engines {
		shard, e, mine := i, eng, buckets[i]
		e.Tick(interval, func() {
			for _, m := range mine {
				cur := m.bytes()
				m.rates = append(m.rates, float64(cur-m.tickMark)*8/secs)
				m.tickMark = cur
			}
			if shard == 0 {
				env.tickTimes = append(env.tickTimes, e.Now().Seconds())
			}
			if shard == monShard {
				env.monFlags = append(env.monFlags, env.nfBottleneck.Monitoring())
			}
		})
	}
	return nil
}

func (TimeseriesProbe) finish(env *scenarioEnv, res *Result) {
	res.Series = env.mergedSeries()
}

// mergedSeries returns the timeseries collected so far. On the single
// engine that is the accumulated sample slice; on a sharded run the
// per-shard buckets are merged in global meter order — the
// single-engine accumulation order, so the samples come out
// bit-identical. The merge is built fresh each call (not appended onto
// prior state) so repeat collection — a second Instance.Run, or the
// serve mode streaming at every segment boundary — returns a
// consistent snapshot instead of duplicates. Sharded merges are only
// coherent at a window barrier (a control point or the finished run),
// where every shard has ticked the same instants.
func (env *scenarioEnv) mergedSeries() []Sample {
	if env.sh == nil {
		return env.series
	}
	series := make([]Sample, 0, len(env.tickTimes))
	for k, tsec := range env.tickTimes {
		s := Sample{TimeSec: tsec}
		for _, m := range env.meters {
			if k >= len(m.rates) {
				continue
			}
			if m.attacker {
				s.AttackerBps += m.rates[k]
			} else {
				s.UserBps += m.rates[k]
			}
		}
		if k < len(env.monFlags) {
			s.Monitoring = env.monFlags[k]
		}
		series = append(series, s)
	}
	return series
}
