package netfence

import (
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
)

// timelineScenario is the time-varying equivalence workload: the
// dumbbell mix under partial deployment, with a timeline exercising
// every mutation kind — link degradation and restoration, attack stop
// and restart, deployment fresh-arm, disarm and re-arm — across the
// simulated half hour.
func timelineScenario(shards int) Scenario {
	sc := equivScenario(
		DumbbellSpec{Senders: 20, BottleneckBps: 4_000_000, ColluderASes: 3},
		[]Workload{
			LongTCP{Senders: Range(0, 5)},
			AttackSpec{Strategy: "flood", Senders: Range(5, 12)},
			ColluderPairs{Senders: Range(12, 20), RateBps: 1_000_000},
		},
		shards,
	)
	sc.Name = "timeline"
	sc.Deployment = DeployFraction(0.5)
	sc.Probes = []Probe{GoodputProbe{}, FairnessProbe{}, FCTProbe{}, TimeseriesProbe{Interval: 5 * Second}}
	sc.Timeline = []Mutation{
		{At: 12 * Second, Link: &LinkMutation{Bottleneck: 0, RateBps: 2_000_000}},
		{At: 14 * Second, Attack: &AttackMutation{Workload: 0, Action: AttackStop}},
		{At: 16 * Second, Deploy: &DeployMutation{Deployment: FullDeployment()}},
		{At: 18 * Second, Attack: &AttackMutation{Workload: 0, Action: AttackStart}},
		{At: 20 * Second, Deploy: &DeployMutation{Deployment: DeployFraction(0.5)}},
		{At: 22 * Second, Attack: &AttackMutation{Workload: 0, Action: AttackSetRate, RateBps: 2_000_000}},
		{At: 24 * Second, Link: &LinkMutation{Bottleneck: 0, Restore: true}},
		{At: 26 * Second, Deploy: &DeployMutation{Deployment: FullDeployment()}},
	}
	return sc
}

// TestTimelineDeterminism is the golden gate of the control plane: a
// scripted timeline must reproduce the single-engine Result JSON byte
// for byte at every shard count, exactly like the static scenarios of
// the sharded equivalence suite.
func TestTimelineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("timeline equivalence sweep is minutes-long; run without -short")
	}
	want := resultJSON(t, timelineScenario(1))
	if !strings.Contains(want, `"Series":[{`) {
		t.Fatalf("timeline baseline collected no timeseries: %s", want)
	}
	for _, shards := range []int{2, 4, 8} {
		got := resultJSON(t, timelineScenario(shards))
		diffJSON(t, "timeline", want, got, shards)
	}
}

// TestTimelineSegmentationInvariance checks that a segmented run — the
// serve mode's execution shape, advancing in small steps with the same
// mutations applied at the same instants through Instance.Apply — is
// byte-identical to the scripted Run. Event order must depend only on
// the event keys, never on where the window boundaries fall.
func TestTimelineSegmentationInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("timeline equivalence sweep is minutes-long; run without -short")
	}
	want := resultJSON(t, timelineScenario(4))

	sc := timelineScenario(4)
	timeline := sc.Timeline
	sc.Timeline = nil
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for at := Time(0); at < sc.Duration; at += Second {
		in.Advance(at)
		for next < len(timeline) && timeline[next].At == at {
			if err := in.Apply(timeline[next]); err != nil {
				t.Fatalf("Apply at %v: %v", at, err)
			}
			next++
		}
		// The live stream reads the merged series at every control
		// point; doing so must not perturb the run.
		in.Series()
	}
	if next != len(timeline) {
		t.Fatalf("applied %d of %d mutations", next, len(timeline))
	}
	res := in.Finish()
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	diffJSON(t, "timeline-segmented", want, string(raw), 4)
}

// TestTimelineValidation exercises the fail-fast surface: structural
// errors are caught at Build, referential ones against the built
// topology, and the sharded cut-link lookahead bound on live Apply.
func TestTimelineValidation(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Name:     "tl-validate",
			Seed:     1,
			Topology: DumbbellSpec{Senders: 4, BottleneckBps: 1_000_000},
			Workloads: []Workload{
				LongTCP{Senders: Range(0, 4)},
			},
			Duration: 10 * Second,
			Warmup:   5 * Second,
		}
	}
	cases := []struct {
		name string
		m    Mutation
		want string
	}{
		{"empty", Mutation{At: Second}, "exactly one"},
		{"two-kinds", Mutation{At: Second, Link: &LinkMutation{RateBps: 1}, Attack: &AttackMutation{Action: AttackStop}}, "exactly one"},
		{"zero-at", Mutation{Link: &LinkMutation{RateBps: 1}}, "At must be positive"},
		{"late-at", Mutation{At: 11 * Second, Link: &LinkMutation{RateBps: 1}}, "beyond the scenario Duration"},
		{"no-effect", Mutation{At: Second, Link: &LinkMutation{}}, "no effect"},
		{"bad-bottleneck", Mutation{At: Second, Link: &LinkMutation{Bottleneck: 3, RateBps: 1}}, "out of range"},
		{"bad-workload", Mutation{At: Second, Attack: &AttackMutation{Workload: 0, Action: AttackStop}}, "out of range"},
		{"bad-action", Mutation{At: Second, Attack: &AttackMutation{Action: "explode"}}, "unknown action"},
		{"neg-rate", Mutation{At: Second, Attack: &AttackMutation{Action: AttackSetRate, RateBps: -1}}, "negative"},
		{"bad-deploy", Mutation{At: Second, Deploy: &DeployMutation{Deployment: DeployFraction(1.5)}}, "outside [0, 1]"},
	}
	for _, tc := range cases {
		sc := base()
		sc.Timeline = []Mutation{tc.m}
		_, err := sc.Build()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Build error = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Valid timelines sort stably by instant.
	sc := base()
	sc.Timeline = []Mutation{
		{At: 4 * Second, Link: &LinkMutation{RateBps: 500_000}},
		{At: 2 * Second, Link: &LinkMutation{RateBps: 250_000}},
	}
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	tl := in.Timeline()
	if len(tl) != 2 || tl[0].At != 2*Second || tl[1].At != 4*Second {
		t.Fatalf("Timeline() = %+v, want sorted by At", tl)
	}

	// Apply after Finish is rejected; Advance is a no-op.
	in.Run()
	if err := in.Apply(Mutation{At: Second, Link: &LinkMutation{RateBps: 1}}); err == nil {
		t.Fatal("Apply on a finished instance succeeded")
	}
	in.Advance(20 * Second)

	// The sharded cut-link delay bound: the star's bottleneck (the
	// access uplink) crosses ASes, so it is a cut link at 2 shards, and
	// a lookahead-violating delay on it is rejected.
	shardSc := base()
	shardSc.Topology = StarSpec{Senders: 4, BottleneckBps: 1_000_000, ColluderASes: 1}
	shardSc.Shards = 2
	sin, err := shardSc.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer sin.Run()
	err = sin.Apply(Mutation{At: Second, Link: &LinkMutation{Delay: Millisecond / 10}})
	if err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("cut-link delay below lookahead: err = %v, want lookahead violation", err)
	}
}

// TestSweepTimelineAxis expands a sweep over the timeline axis and
// checks cell naming, per-cell Timeline assignment, the Progress hook,
// and that the axis validates its mutations up front.
func TestSweepTimelineAxis(t *testing.T) {
	base := Scenario{
		Name:     "tlsweep",
		Seed:     3,
		Topology: DumbbellSpec{Senders: 4, BottleneckBps: 1_000_000},
		Workloads: []Workload{
			LongTCP{Senders: Range(0, 4)},
		},
		Duration: 6 * Second,
		Warmup:   2 * Second,
	}
	sw := Sweep{
		Base: base,
		Timelines: []NamedTimeline{
			{Name: "static"},
			{Name: "degrade", Timeline: []Mutation{
				{At: 3 * Second, Link: &LinkMutation{Bottleneck: 0, RateBps: 500_000}},
			}},
		},
		Seeds: []uint64{3, 4},
	}
	scs := sw.Scenarios()
	if len(scs) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(scs))
	}
	if want := "tlsweep/netfence/n=4/timeline=static/seed=3"; scs[0].Name != want {
		t.Errorf("cell 0 name = %q, want %q", scs[0].Name, want)
	}
	if want := "tlsweep/netfence/n=4/timeline=degrade/seed=4"; scs[3].Name != want {
		t.Errorf("cell 3 name = %q, want %q", scs[3].Name, want)
	}
	if len(scs[0].Timeline) != 0 || len(scs[2].Timeline) != 1 {
		t.Errorf("timeline assignment wrong: static=%d degrade=%d", len(scs[0].Timeline), len(scs[2].Timeline))
	}

	var calls atomic.Int32
	var lastDone atomic.Int32
	sw.Progress = func(done, total int, cell string) {
		calls.Add(1)
		lastDone.Store(int32(done))
		if total != 4 || cell == "" {
			t.Errorf("Progress(done=%d, total=%d, cell=%q)", done, total, cell)
		}
	}
	results, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 || lastDone.Load() != 4 {
		t.Errorf("Progress: %d calls, final done %d, want 4/4", calls.Load(), lastDone.Load())
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("cell %d missing", i)
		}
	}
	// The degraded cells must differ from their static siblings.
	a, _ := json.Marshal(results[0])
	b, _ := json.Marshal(results[2])
	if string(a) == string(b) {
		t.Error("degrade timeline produced an identical result to the static cell")
	}

	// Invalid timeline mutations fail fast, before any cell runs.
	bad := sw
	bad.Progress = nil
	bad.Timelines = []NamedTimeline{{Name: "bad", Timeline: []Mutation{{}}}}
	if _, err := bad.Run(); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Errorf("invalid timeline axis: err = %v", err)
	}
}

// TestSweepRunContextCancel checks the interrupt contract: a cancelled
// sweep returns completed cells, leaves the rest nil, and joins the
// context error.
func TestSweepRunContextCancel(t *testing.T) {
	base := Scenario{
		Name:     "cancel",
		Seed:     1,
		Topology: DumbbellSpec{Senders: 4, BottleneckBps: 1_000_000},
		Workloads: []Workload{
			LongTCP{Senders: Range(0, 4)},
		},
		Duration: 6 * Second,
		Warmup:   2 * Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	sw := Sweep{
		Base:        base,
		Seeds:       []uint64{1, 2, 3, 4, 5, 6, 7, 8},
		Parallelism: 1,
		Progress: func(d, total int, cell string) {
			if done.Add(1) == 2 {
				cancel() // after two cells, interrupt
			}
		},
	}
	results, err := sw.RunContext(ctx)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("cancelled sweep error = %v, want interrupted", err)
	}
	completed := 0
	for _, r := range results {
		if r != nil {
			completed++
		}
	}
	if completed < 2 || completed >= len(results) {
		t.Errorf("completed %d of %d cells after cancel at 2", completed, len(results))
	}
}
