package netfence

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"netfence/internal/attack"
	"netfence/internal/defense"
)

// Sweep fans a scenario matrix — defenses × populations × deployment
// fractions × attacks × seeds × shard counts — across goroutines, one
// engine (or engine group, for sharded cells) per scenario, and
// returns a unified result set. Results are deterministic: the matrix
// expands in a fixed order, every scenario runs on its own seeded
// engine, and results land in matrix order regardless of worker count,
// so the same sweep always produces an identical []*Result.
//
//	results, err := netfence.Sweep{
//		Base:     base,
//		Defenses: []string{"netfence", "tva", "stopit", "fq"},
//		Seeds:    []uint64{1, 2, 3},
//	}.Run()
type Sweep struct {
	// Base is the scenario every matrix cell derives from.
	Base Scenario
	// Defenses lists registry names to sweep (nil = just Base's defense).
	Defenses []string
	// Populations lists sender populations to sweep (nil = just Base's).
	// With BaseFor unset, each entry only rebuilds Base's topology at
	// that population — Base's workload sender lists are kept verbatim,
	// which suits populations at or above every listed index but errors
	// below them. Set BaseFor when the workloads depend on population.
	Populations []int
	// BaseFor, when set, generates the whole base scenario for a
	// population cell instead of resizing Base's topology — the way to
	// scale role splits (user/attacker index lists) with the population.
	// Defense, seed and name are still applied per cell on top.
	BaseFor func(population int) Scenario
	// DeployFractions lists partial-deployment fractions to sweep: each
	// cell deploys the defense on that fraction of source ASes via
	// DeployFraction (nil = just Base's Deployment). The incremental-
	// deployment axis of the paper's "inside out" story.
	DeployFractions []float64
	// Attacks lists attack specs to sweep — registry names, optionally
	// parameterized ("onoff-sync:on=1,off=4"): each cell re-targets
	// every AttackSpec workload of the cell's scenario (from Base or
	// BaseFor) at that strategy with those parameter overrides (nil =
	// keep the workloads' declared strategies). The adaptive-adversary
	// axis of §6.3.
	Attacks []string
	// Timelines lists named mutation timelines to sweep: each cell runs
	// the scenario under that Timeline (nil = just Base's Timeline). The
	// time-varying-conditions axis — e.g. the same attack under a static
	// bottleneck, a mid-run degradation, and a mid-run deployment change.
	Timelines []NamedTimeline
	// Seeds lists RNG seeds to sweep (nil = just Base's).
	Seeds []uint64
	// Shards lists per-scenario shard counts to sweep (nil = just
	// Base's Shards): each cell runs its engines partitioned that many
	// ways — the parallel-execution axis, for speedup and equivalence
	// studies.
	Shards []int
	// Parallelism caps concurrent scenarios. 0 budgets the sum of
	// in-flight shard goroutines (a cell's width is its shard count) to
	// GOMAXPROCS — sharded cells bring their own goroutines, and
	// oversubscribing the scheduler thrashes every cell's window
	// barriers. Set it explicitly to override the budget with a plain
	// worker cap.
	Parallelism int
	// Progress, when set, is called after each cell completes (or fails)
	// with the number of finished cells, the matrix total, and the cell's
	// name. Calls are serialized; done reaches total when the sweep ends.
	// The serve mode's job status and the CLI's -progress flag hang off
	// this hook.
	Progress func(done, total int, cell string)
}

// NamedTimeline is one entry of the Sweep's timeline axis: a scenario
// Timeline with the name its cells carry (`/timeline=<name>`).
type NamedTimeline struct {
	Name     string
	Timeline []Mutation
}

// Scenarios expands the matrix in its deterministic order:
// defense-major, then population, then deployment fraction, then attack,
// then seed.
func (sw Sweep) Scenarios() []Scenario {
	defenses := sw.Defenses
	if len(defenses) == 0 {
		name := sw.Base.Defense.Name
		if name == "" {
			name = "netfence"
		}
		defenses = []string{name}
	}
	pops := sw.Populations
	if len(pops) == 0 {
		if sw.BaseFor != nil && sw.Base.Topology != nil {
			// BaseFor with no explicit axis: one cell at the base
			// population, still generated through BaseFor.
			pops = []int{sw.Base.Topology.population()}
		} else {
			pops = []int{0} // keep the base topology
		}
	}
	// The deployment axis keeps cell names stable when unused: a nil
	// axis reuses Base's Deployment and adds no name segment.
	deploys := sw.DeployFractions
	sweepDeploy := len(deploys) > 0
	if !sweepDeploy {
		deploys = []float64{-1}
	}
	attacks := sw.Attacks
	sweepAttack := len(attacks) > 0
	if !sweepAttack {
		attacks = []string{""}
	}
	timelines := sw.Timelines
	sweepTimeline := len(timelines) > 0
	if !sweepTimeline {
		timelines = []NamedTimeline{{}} // keep Base's Timeline
	}
	seeds := sw.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{sw.Base.Seed}
	}
	shardsAxis := sw.Shards
	sweepShards := len(shardsAxis) > 0
	if !sweepShards {
		shardsAxis = []int{0} // keep the base scenario's Shards
	}
	baseName := sw.Base.Name
	if baseName == "" {
		baseName = "sweep"
	}
	baseDefense := defense.Canonical(sw.Base.Defense.Name)
	if baseDefense == "" {
		baseDefense = "netfence"
	}

	var out []Scenario
	for _, d := range defenses {
		for _, pop := range pops {
			for _, dep := range deploys {
				for _, atk := range attacks {
					for _, tl := range timelines {
						for _, seed := range seeds {
							for _, nsh := range shardsAxis {
								sc := sw.Base
								if pop > 0 {
									if sw.BaseFor != nil {
										sc = sw.BaseFor(pop)
									} else if sc.Topology != nil {
										sc.Topology = sc.Topology.withPopulation(pop)
									}
								}
								// A system-specific config only survives onto its own
								// system; other cells fall back to defaults. The cell's
								// scenario (Base or BaseFor's output) owns the config.
								cellDefense := defense.Canonical(sc.Defense.Name)
								if cellDefense == "" {
									cellDefense = baseDefense
								}
								cellConfig := sc.Defense.Config
								if cellConfig == nil && cellDefense == baseDefense {
									cellConfig = sw.Base.Defense.Config
								}
								sc.Defense = DefenseSpec{Name: d}
								if defense.Canonical(d) == cellDefense {
									sc.Defense.Config = cellConfig
								}
								sc.Seed = seed
								// A registry-resolved spec on its builder default has
								// no declared population; omit the segment rather
								// than reporting a misleading n=0.
								popSeg := ""
								if sc.Topology != nil {
									if n := sc.Topology.population(); n > 0 {
										popSeg = fmt.Sprintf("/n=%d", n)
									}
								}
								deploySeg := ""
								if sweepDeploy {
									sc.Deployment = DeployFraction(dep)
									deploySeg = fmt.Sprintf("/deploy=%.2f", dep)
								}
								attackSeg := ""
								if sweepAttack {
									// Scenarios has no error return; an invalid spec keeps
									// its raw canonical name here and fails in checkAttacks.
									name, params, err := attack.ParseSpec(atk)
									if err != nil {
										name, params = attack.Canonical(atk), nil
									}
									sc.Workloads = retargetAttacks(sc.Workloads, name, params)
									attackSeg = fmt.Sprintf("/attack=%s", attack.FormatSpec(name, params))
								}
								timelineSeg := ""
								if sweepTimeline {
									sc.Timeline = tl.Timeline
									timelineSeg = fmt.Sprintf("/timeline=%s", tl.Name)
								}
								shardSeg := ""
								if sweepShards {
									sc.Shards = nsh
									shardSeg = fmt.Sprintf("/shards=%d", nsh)
								}
								sc.Name = fmt.Sprintf("%s/%s%s%s%s%s%s/seed=%d", baseName, defense.Canonical(d), popSeg, deploySeg, attackSeg, timelineSeg, shardSeg, seed)
								out = append(out, sc)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// retargetAttacks copies a workload list with every AttackSpec pointed
// at the given strategy with the given parameter overrides, leaving the
// input (shared with Base across matrix cells) untouched.
// Strategy-specific Options and Params only survive onto cells of their
// own declared strategy — the same rule the defense axis applies to
// Defense.Config — so a foreign strategy's cells build with defaults
// instead of erroring on an option type or param key they reject. Axis
// params, when present, replace the workload's own.
func retargetAttacks(ws []Workload, strategy string, params map[string]float64) []Workload {
	out := make([]Workload, len(ws))
	for i, w := range ws {
		if as, ok := w.(AttackSpec); ok {
			declared := as.Strategy
			if declared == "" {
				declared = "flood"
			}
			if attack.Canonical(declared) != attack.Canonical(strategy) {
				as.Options = nil
				as.Params = nil
			}
			as.Strategy = strategy
			if params != nil {
				as.Params = params
			}
			out[i] = as
			continue
		}
		out[i] = w
	}
	return out
}

// Run executes the matrix and returns results in matrix order. A failing
// cell leaves a nil slot; the error joins every failure alongside the
// completed cells' results.
func (sw Sweep) Run() ([]*Result, error) {
	return sw.RunContext(context.Background())
}

// RunContext is Run under a context: when ctx is cancelled, in-flight
// cells run to completion (a discrete-event engine has no safe
// mid-window abort), remaining cells are skipped with nil slots, and
// the joined error includes ctx's error — so an interrupted sweep
// still returns every completed cell's result, the checkpoint the CLI
// flushes on SIGINT.
func (sw Sweep) RunContext(ctx context.Context) ([]*Result, error) {
	if sw.BaseFor != nil && len(sw.Populations) == 0 && sw.Base.Topology == nil {
		return nil, errors.New("netfence: Sweep.BaseFor needs Populations (or a Base topology to take the population from)")
	}
	for _, p := range sw.Populations {
		if p <= 0 {
			return nil, fmt.Errorf("netfence: Sweep population %d must be positive", p)
		}
		if err := sw.checkPopulation(p); err != nil {
			return nil, err
		}
	}
	for _, f := range sw.DeployFractions {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("netfence: Sweep deployment fraction %v outside [0, 1]", f)
		}
	}
	for _, n := range sw.Shards {
		if n == 0 || (n < 0 && n != AutoShards) {
			return nil, fmt.Errorf("netfence: Sweep shard count %d must be positive or AutoShards", n)
		}
	}
	if err := sw.checkAttacks(); err != nil {
		return nil, err
	}
	for i, tl := range sw.Timelines {
		for j, m := range tl.Timeline {
			if err := m.validate(); err != nil {
				return nil, fmt.Errorf("netfence: Sweep timeline %q (index %d) mutation %d: %w", tl.Name, i, j, err)
			}
		}
	}
	scs := sw.Scenarios()
	var onDone func(i int)
	if sw.Progress != nil {
		var mu sync.Mutex
		done := 0
		onDone = func(i int) {
			// The callback runs under the mutex so calls are serialized
			// and done counts monotonically as delivered.
			mu.Lock()
			defer mu.Unlock()
			done++
			sw.Progress(done, len(scs), scs[i].Name)
		}
	}
	return runParallelCtx(ctx, scs, sw.Parallelism, onDone)
}

// checkAttacks fails fast on an unknown attack name — naming the
// offending entry and the registered strategies instead of erroring
// from deep inside workload attachment — and on an Attacks axis with no
// AttackSpec workload to re-target (without this, every /attack= cell
// would silently run identical workloads). With BaseFor the check
// probes the first population cell's generated scenario.
func (sw Sweep) checkAttacks() error {
	for i, a := range sw.Attacks {
		if !attack.Registered(a) {
			if _, _, err := attack.ParseSpec(a); err != nil {
				return fmt.Errorf("netfence: Sweep attack %q (index %d): %w", a, i, err)
			}
		}
	}
	if len(sw.Attacks) == 0 {
		return nil
	}
	// The cells' workloads come from BaseFor when a positive population
	// reaches it; otherwise (no Populations and a population-less
	// registry topology) Scenarios falls back to Base's workloads, so
	// check whichever set the cells will actually run.
	workloads := sw.Base.Workloads
	where := "Base"
	if sw.BaseFor != nil {
		pop := 0
		if len(sw.Populations) > 0 {
			pop = sw.Populations[0]
		} else if sw.Base.Topology != nil {
			pop = sw.Base.Topology.population()
		}
		if pop > 0 {
			workloads = sw.BaseFor(pop).Workloads
			where = "BaseFor"
		}
	}
	for _, w := range workloads {
		if _, ok := w.(AttackSpec); ok {
			return nil
		}
	}
	return fmt.Errorf("netfence: Sweep.Attacks is set, but %s has no AttackSpec workload to re-target", where)
}

// checkPopulation fails fast when a population cell is too small for
// Base's declared workload sender lists — naming the offending workload
// and index instead of erroring from deep inside topology build. With
// BaseFor set the workloads are regenerated per cell, so there is
// nothing to check up front.
func (sw Sweep) checkPopulation(pop int) error {
	if sw.BaseFor != nil || sw.Base.Topology == nil {
		return nil
	}
	sizes := sw.Base.Topology.withPopulation(pop).groupSizes()
	if sizes == nil {
		return nil // registry-resolved spec: capacity unknown until build
	}
	for _, w := range sw.Base.Workloads {
		kind, group, max := w.span()
		if max < 0 {
			continue
		}
		if group < 0 || group >= len(sizes) {
			return fmt.Errorf("netfence: Sweep workload %s targets group %d, but the topology has %d groups", kind, group, len(sizes))
		}
		if max >= sizes[group] {
			return fmt.Errorf("netfence: Sweep population %d is too small for workload %s: sender index %d needs at least %d senders in group %d, got %d",
				pop, kind, max, max+1, group, sizes[group])
		}
	}
	return nil
}

// cpuTokens is a weighted semaphore over GOMAXPROCS: each in-flight
// sweep cell holds as many tokens as it has shard goroutines, so the
// sum of running shards never exceeds the CPU budget while cells of
// different widths pack freely (a shards=8 cell does not halve the
// concurrency of the shards=1 cells around it).
type cpuTokens struct {
	mu   sync.Mutex
	cond *sync.Cond
	free int
}

func newCPUTokens(n int) *cpuTokens {
	t := &cpuTokens{free: n}
	t.cond = sync.NewCond(&t.mu)
	return t
}

func (t *cpuTokens) acquire(n int) {
	t.mu.Lock()
	for t.free < n {
		t.cond.Wait()
	}
	t.free -= n
	t.mu.Unlock()
}

func (t *cpuTokens) release(n int) {
	t.mu.Lock()
	t.free += n
	t.mu.Unlock()
	t.cond.Broadcast()
}

// cellWidth is the CPU-token cost of one built scenario: its realized
// shard count (AutoShards already resolved and clamped by Build),
// clamped to the budget so every cell can run at all.
func cellWidth(in *Instance, budget int) int {
	n := 1
	if in.Sharding != nil {
		n = in.Sharding.Shards
	}
	if n < 1 {
		n = 1
	}
	if n > budget {
		n = budget
	}
	return n
}

// runParallel drives scenarios across a bounded worker pool, slotting
// each result at its scenario's index. With no explicit parallelism it
// budgets the sum of in-flight shard goroutines to GOMAXPROCS via a
// weighted semaphore: every sharded cell brings its own goroutines,
// and running more than the budget allows makes each cell's window
// barriers wait on descheduled workers — oversubscription slows the
// whole sweep down rather than speeding it up. An explicit parallelism
// overrides the budget and caps plain worker count instead.
func runParallel(scs []Scenario, parallelism int) ([]*Result, error) {
	return runParallelCtx(context.Background(), scs, parallelism, nil)
}

// runParallelCtx is runParallel under a context with a per-cell
// completion callback. Cancelling ctx stops feeding new cells (and
// makes queued workers drop their items); cells already running finish
// normally. onDone, when set, is invoked once per attempted cell —
// completed or failed — with its scenario index.
func runParallelCtx(ctx context.Context, scs []Scenario, parallelism int, onDone func(i int)) ([]*Result, error) {
	var tokens *cpuTokens
	budget := runtime.GOMAXPROCS(0)
	if parallelism <= 0 {
		parallelism = budget
		tokens = newCPUTokens(budget)
	}
	if parallelism > len(scs) {
		parallelism = len(scs)
	}
	results := make([]*Result, len(scs))
	errs := make([]error, len(scs)+1)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// A cancellation between feed and pickup: skip the cell,
				// leave its slot nil without a per-cell error (the joined
				// ctx error already says why).
				if ctx.Err() != nil {
					continue
				}
				// Build before costing: the instance knows its realized
				// shard count (AutoShards resolved against the actual
				// topology), so an auto-sharded cell over a small
				// topology is charged what it really uses. At most
				// `parallelism` built-but-waiting cells exist, the same
				// bound as running cells.
				in, err := scs[i].Build()
				if err != nil {
					errs[i] = err
					if onDone != nil {
						onDone(i)
					}
					continue
				}
				n := 0
				if tokens != nil {
					n = cellWidth(in, budget)
					tokens.acquire(n)
				}
				res := in.Run()
				if tokens != nil {
					tokens.release(n)
				}
				results[i] = res
				if onDone != nil {
					onDone(i)
				}
			}
		}()
	}
feed:
	for i := range scs {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs[len(scs)] = fmt.Errorf("netfence: sweep interrupted: %w", err)
	}
	return results, errors.Join(errs...)
}
