package netfence_test

import (
	"reflect"
	"strings"
	"testing"

	"netfence"
)

// attackBase is a small collusion scenario with an adaptive attacker
// side: one group, 1 user + 3 attackers aimed at colluding receivers.
func attackBase(strategy string) netfence.Scenario {
	return netfence.Scenario{
		Name:     "strategic",
		Seed:     1,
		Topology: netfence.DumbbellSpec{Senders: 4, BottleneckBps: 800_000, ColluderASes: 2},
		Defense:  netfence.Defense("netfence"),
		Workloads: []netfence.Workload{
			netfence.LongTCP{Senders: []int{0}},
			netfence.AttackSpec{Strategy: strategy, Senders: netfence.Range(1, 4), ToColluders: true},
		},
		Duration: 60 * netfence.Second,
		Warmup:   30 * netfence.Second,
	}
}

// TestAttackRegistryListing checks every in-tree strategy resolves in
// the root registry surface.
func TestAttackRegistryListing(t *testing.T) {
	names := netfence.Attacks()
	if len(names) < 5 {
		t.Fatalf("registry lists %d strategies, want >= 5: %v", len(names), names)
	}
	for _, want := range []string{"flood", "onoff-sync", "request-prio", "replay", "legacy-flood"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry missing %q (have %v)", want, names)
		}
	}
}

// TestAttackSpecStrategiesRun drives every registered strategy through
// the declarative API: each must attach, run, record itself in
// Result.Attack, and leave the legitimate sender with working goodput.
func TestAttackSpecStrategiesRun(t *testing.T) {
	for _, name := range netfence.Attacks() {
		res, err := attackBase(name).Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Attack != name {
			t.Fatalf("%s: Result.Attack = %q", name, res.Attack)
		}
		if len(res.AttackerRates) != 3 {
			t.Fatalf("%s: %d attacker meters, want 3", name, len(res.AttackerRates))
		}
		if res.UserBps <= 0 {
			t.Fatalf("%s: user goodput %.0f", name, res.UserBps)
		}
	}
}

// TestAttackSpecValidation exercises the attach-time error paths.
func TestAttackSpecValidation(t *testing.T) {
	bad := attackBase("bogus")
	if _, err := bad.Run(); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("unknown strategy error = %v", err)
	}
	bad = attackBase("onoff-sync")
	ws := bad.Workloads[1].(netfence.AttackSpec)
	ws.Options = "nope"
	bad.Workloads[1] = ws
	if _, err := bad.Run(); err == nil {
		t.Fatal("onoff-sync accepted a string option")
	}
	bad = attackBase("flood")
	bad.Topology = netfence.DumbbellSpec{Senders: 4, BottleneckBps: 800_000} // no colluders
	if _, err := bad.Run(); err == nil {
		t.Fatal("colluder-bound attack without colluder hosts accepted")
	}
}

// TestReplayDemotedUnderNetFence pits replay against flood under
// NetFence: replayed feedback expires (keyring + freshness window), so
// the replay attackers end up demoted to the request channel and take
// far less than the honestly policed flood.
func TestReplayDemotedUnderNetFence(t *testing.T) {
	results, err := netfence.RunAll(attackBase("flood"), attackBase("replay"))
	if err != nil {
		t.Fatal(err)
	}
	flood, replay := results[0], results[1]
	if replay.AttackerBps >= flood.AttackerBps/2 {
		t.Fatalf("replay attackers hold %.0f bps vs flood's %.0f — expiry did not bite",
			replay.AttackerBps, flood.AttackerBps)
	}
	if replay.UserBps <= 0 {
		t.Fatal("user starved under replay")
	}
}

// TestReplayDemotedUnderMultiFeedback repeats the replay-vs-flood check
// with the Appendix B.1 multi-bottleneck header enabled: returned
// feedback arrives as a chained multi header, which replay must cache
// and replay the same way — and which the access router must likewise
// expire and demote.
func TestReplayDemotedUnderMultiFeedback(t *testing.T) {
	cfg := netfence.DefaultConfig()
	cfg.MultiFeedback = true
	mk := func(strategy string) netfence.Scenario {
		sc := attackBase(strategy)
		sc.Defense = netfence.DefenseSpec{Name: "netfence", Config: cfg}
		return sc
	}
	results, err := netfence.RunAll(mk("flood"), mk("replay"))
	if err != nil {
		t.Fatal(err)
	}
	flood, replay := results[0], results[1]
	if replay.AttackerBps >= flood.AttackerBps/2 {
		t.Fatalf("B.1 replay attackers hold %.0f bps vs flood's %.0f — multi-header expiry did not bite",
			replay.AttackerBps, flood.AttackerBps)
	}
	if replay.UserBps <= 0 {
		t.Fatal("user starved under B.1 replay")
	}
}

// TestSweepAttackAxis checks the new Attacks axis: deterministic
// expansion with /attack= segments, per-cell re-targeting recorded in
// Result.Attack, and serial/parallel result identity.
func TestSweepAttackAxis(t *testing.T) {
	sw := netfence.Sweep{
		Base:     attackBase("flood"),
		Defenses: []string{"netfence", "fq"},
		Attacks:  []string{"flood", "legacy-flood"},
		Seeds:    []uint64{1},
	}
	scs := sw.Scenarios()
	if len(scs) != 4 {
		t.Fatalf("matrix size %d, want 4", len(scs))
	}
	if want := "strategic/netfence/n=4/attack=flood/seed=1"; scs[0].Name != want {
		t.Fatalf("first cell %q, want %q", scs[0].Name, want)
	}
	if want := "strategic/fq/n=4/attack=legacy-flood/seed=1"; scs[3].Name != want {
		t.Fatalf("last cell %q, want %q", scs[3].Name, want)
	}
	// Re-targeting must not mutate the shared Base workload list.
	if got := sw.Base.Workloads[1].(netfence.AttackSpec).Strategy; got != "flood" {
		t.Fatalf("Base workload mutated to %q", got)
	}

	serial := sw
	serial.Parallelism = 1
	parallel := sw
	parallel.Parallelism = 4
	a, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("cell %d differs between serial and parallel runs:\n%v\n%v", i, a[i], b[i])
		}
	}
	for i, want := range []string{"flood", "legacy-flood", "flood", "legacy-flood"} {
		if a[i].Attack != want {
			t.Fatalf("cell %d Attack = %q, want %q", i, a[i].Attack, want)
		}
	}
}

// TestSweepAttackOptionsSurvival pins the Options rule on the Attacks
// axis: strategy-specific options survive onto their own strategy's
// cells and are dropped from foreign cells (which would reject the
// type), mirroring the Defense.Config rule.
func TestSweepAttackOptionsSurvival(t *testing.T) {
	base := attackBase("onoff-sync")
	ws := base.Workloads[1].(netfence.AttackSpec)
	ws.Options = netfence.OnOffOptions{OffRateBps: 10_000}
	base.Workloads[1] = ws
	sw := netfence.Sweep{Base: base, Attacks: []string{"flood", "onoff-sync"}}
	scs := sw.Scenarios()
	if len(scs) != 2 {
		t.Fatalf("matrix size %d, want 2", len(scs))
	}
	if opts := scs[0].Workloads[1].(netfence.AttackSpec).Options; opts != nil {
		t.Fatalf("flood cell kept onoff-sync options: %v", opts)
	}
	if opts := scs[1].Workloads[1].(netfence.AttackSpec).Options; opts == nil {
		t.Fatal("onoff-sync cell lost its own options")
	}
	results, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if results[0] == nil || results[1] == nil {
		t.Fatal("a cell failed to run")
	}
}

// TestSweepAttackFailFast pins the up-front validation: unknown names
// and an Attacks axis with nothing to re-target error before any cell
// builds, in the Populations-check style.
func TestSweepAttackFailFast(t *testing.T) {
	sw := netfence.Sweep{Base: attackBase("flood"), Attacks: []string{"flood", "bogus"}}
	_, err := sw.Run()
	if err == nil || !strings.Contains(err.Error(), `Sweep attack "bogus"`) {
		t.Fatalf("unknown attack error = %v", err)
	}
	if !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("error does not list registered strategies: %v", err)
	}
	noAttack := sweepBase()
	sw = netfence.Sweep{Base: noAttack, Attacks: []string{"flood"}}
	if _, err := sw.Run(); err == nil || !strings.Contains(err.Error(), "no AttackSpec") {
		t.Fatalf("missing-AttackSpec error = %v", err)
	}
	// With BaseFor the workloads are generated per cell: names are
	// validated and the first population cell is probed for an
	// AttackSpec.
	sw = netfence.Sweep{
		Base:        netfence.Scenario{Name: "x"},
		BaseFor:     func(pop int) netfence.Scenario { return attackBase("flood") },
		Populations: []int{4},
		Attacks:     []string{"nope"},
	}
	if _, err := sw.Run(); err == nil || !strings.Contains(err.Error(), `Sweep attack "nope"`) {
		t.Fatalf("BaseFor attack validation error = %v", err)
	}
	sw = netfence.Sweep{
		Base:        netfence.Scenario{Name: "x"},
		BaseFor:     func(pop int) netfence.Scenario { return sweepBase() }, // no AttackSpec
		Populations: []int{4},
		Attacks:     []string{"flood"},
	}
	if _, err := sw.Run(); err == nil || !strings.Contains(err.Error(), "BaseFor has no AttackSpec") {
		t.Fatalf("BaseFor missing-AttackSpec error = %v", err)
	}
	// A population-less registry topology never reaches BaseFor, so the
	// cells would run Base's workloads — which must then carry the
	// AttackSpec themselves.
	sw = netfence.Sweep{
		Base:    netfence.Scenario{Name: "x", Topology: netfence.Topology("star"), Workloads: sweepBase().Workloads},
		BaseFor: func(pop int) netfence.Scenario { return attackBase("flood") },
		Attacks: []string{"flood"},
	}
	if _, err := sw.Run(); err == nil || !strings.Contains(err.Error(), "Base has no AttackSpec") {
		t.Fatalf("population-less BaseFor fallback error = %v", err)
	}
}

// TestBoundProbe checks the Theorem-1 floor computation and that a
// NetFence-defended scenario clears it.
func TestBoundProbe(t *testing.T) {
	sc := attackBase("flood")
	sc.Probes = []netfence.Probe{netfence.BoundProbe{}, netfence.GoodputProbe{}}
	res, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Fair share: 800 kbps / 4 senders = 200 kbps.
	if res.FairShareBps != 200_000 {
		t.Fatalf("FairShareBps = %f", res.FairShareBps)
	}
	// Floor: nu * rho * fair = 0.5 * 0.729 * 200k = 72.9k.
	if res.BoundBps < 72_800 || res.BoundBps > 73_000 {
		t.Fatalf("BoundBps = %f, want ~72900", res.BoundBps)
	}
	if !res.BoundHolds {
		t.Fatalf("NetFence under flood must clear the Theorem-1 floor (user %.0f, floor %.0f)",
			res.UserBps, res.BoundBps)
	}
	// The explicit Nu knob scales the floor.
	sc.Probes = []netfence.Probe{netfence.BoundProbe{Nu: 1.0}}
	res, err = sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.BoundBps < 145_700 || res.BoundBps > 145_900 {
		t.Fatalf("BoundBps with Nu=1 = %f, want ~145800", res.BoundBps)
	}
	// The floor is a single-link statement: multi-bottleneck topologies
	// are rejected at build time rather than checked vacuously.
	pl := netfence.Scenario{
		Seed:     3,
		Topology: netfence.ParkingLotSpec{SendersPerGroup: 4, L1Bps: 640_000, L2Bps: 960_000},
		Workloads: []netfence.Workload{
			netfence.LongTCP{Group: 0, Senders: []int{0}},
		},
		Probes:   []netfence.Probe{netfence.BoundProbe{}},
		Duration: 20 * netfence.Second,
		Warmup:   10 * netfence.Second,
	}
	if _, err := pl.Run(); err == nil || !strings.Contains(err.Error(), "single-bottleneck") {
		t.Fatalf("BoundProbe on a parking lot: err = %v, want single-bottleneck rejection", err)
	}
}
