package netfence

import (
	"strconv"

	"netfence/internal/netsim"
	"netfence/internal/obs"
	"netfence/internal/queue"
	"netfence/internal/sim"
)

// Observability plane (internal/obs).
type (
	// Meter accumulates executed-event counts across one run's shard
	// engines; see Scenario.Meter.
	Meter = sim.Meter
	// TraceEvent is one hop of a sampled packet's flight-recorder trace.
	TraceEvent = obs.TraceEvent
	// MetricDef describes one registered metric for catalogs and docs.
	MetricDef = obs.Def
)

// Metrics returns the full registered metric catalog in cell order —
// the source of truth behind -list-metrics, Result.Counters keys and
// the /metrics endpoint.
func Metrics() []MetricDef { return obs.Catalog() }

// replicaNets lists the run's networks in shard order (a single entry
// on the classic engine).
func (in *Instance) replicaNets() []*netsim.Network {
	if sh := in.env.sh; sh != nil {
		nets := make([]*netsim.Network, len(sh.replicas))
		for i, bt := range sh.replicas {
			nets[i] = bt.net
		}
		return nets
	}
	return []*netsim.Network{in.env.net}
}

// harvestGauges folds queue state only visible by inspection — the
// per-queue backlog high-water mark — into a replica's cells. Called
// at snapshot barriers; the marks are monotone, so repeated harvests
// are idempotent.
func harvestGauges(net *netsim.Network) {
	var hwm uint64
	for _, l := range net.Links {
		if hw, ok := l.Q.(queue.HighWaterer); ok {
			if v := uint64(hw.HighWater()); v > hwm {
				hwm = v
			}
		}
	}
	net.Cells.SetMax(obs.QueueHWMBytes, hwm)
}

// mergedCells harvests and merges every replica's cells in shard
// order. Callers must hold the run at a control point (built, between
// Advance segments, or finished) so no engine goroutine is mutating
// cells concurrently.
func (in *Instance) mergedCells() obs.Cells {
	nets := in.replicaNets()
	cells := make([]obs.Cells, len(nets))
	for i, n := range nets {
		harvestGauges(n)
		cells[i] = n.Cells
	}
	return obs.Merge(cells)
}

// Counters returns the deterministic counter plane: every packet-path
// counter, gauge and histogram series with a non-zero value, merged
// across shards. The snapshot is byte-identical across shard counts
// 1/2/4/8 — the same equivalence contract as the Result itself — and
// is what Result.Counters carries.
func (in *Instance) Counters() map[string]uint64 {
	return obs.DeterministicMap(in.mergedCells())
}

// RuntimeCounters returns the runtime plane: execution artifacts that
// legitimately vary with the shard layout — events executed (total and
// per shard), cut-link handoff batches and packet counts, mailbox
// depth high-water marks, replicated keyring-rotation timers. Surfaced
// on /metrics, -metrics-out and bench rows; never part of Result.
func (in *Instance) RuntimeCounters() map[string]uint64 {
	m := obs.RuntimeMap(in.mergedCells())
	var total uint64
	for i, e := range in.Engines {
		n := e.Executed()
		total += n
		if n > 0 {
			m[`sim_events_executed{shard="`+strconv.Itoa(i)+`"}`] = n
		}
	}
	if total > 0 {
		m["sim_events_executed_total"] = total
	}
	return m
}

// EventsExecuted returns the total discrete events executed by the
// run's engines so far. Per-instance, so concurrent runs in one
// process never cross-contaminate.
func (in *Instance) EventsExecuted() uint64 {
	var total uint64
	for _, e := range in.Engines {
		total += e.Executed()
	}
	return total
}

// Trace returns the merged flight-recorder trace: every recorded hop
// of the sampled flows, sorted by full event content, so the trace is
// byte-identical across shard counts. Empty without Scenario.TraceFlows.
func (in *Instance) Trace() []TraceEvent {
	nets := in.replicaNets()
	recs := make([]*obs.Recorder, len(nets))
	for i, n := range nets {
		recs[i] = n.Rec
	}
	return obs.MergeTraces(recs)
}
